"""E6 — Comparison against baselines at equal summary size (§1 motivation).

Claim (implicit in the introduction): generic sketches — uniform sampling
and *uncapacitated* sensitivity coresets — do not carry the capacitated
guarantee; the only prior streaming approach [BBLM14] needs three passes and
insertions only.

Workload: three dense blobs (~99.5% of mass) plus a small far cluster
(~0.5%) whose points dominate the cost for any center set that does not
cover it.  Every summary gets the *same size* (our coreset's, built with an
aggressive compression profile); the score is the worst two-sided
capacitated-sandwich ratio over a battery of center sets (planted, covering,
oblivious-to-the-far-cluster) and capacities.

Shape to check: ours stays within 1+ε on every row; uniform sampling blows
up by orders of magnitude on oblivious centers (it misses the far cluster
entirely on some seeds); the sensitivity coreset — designed exactly for the
uncapacitated version of this failure — survives the oblivious test but has
no capacitated guarantee; BBLM14 needs three passes for a comparable result.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from common import print_table
from repro.baselines import ThreePassMappingCoreset, sensitivity_coreset, uniform_coreset
from repro.core import CoresetParams, build_coreset_auto
from repro.data.workloads import insertion_stream
from repro.metrics.costs import capacitated_cost


def _far_cluster_instance(seed=5):
    rng = np.random.default_rng(seed)
    big = np.vstack([
        rng.normal((300 + 80 * i, 300, 300), 8, size=(3980, 3)) for i in range(3)
    ])
    far = rng.normal((900, 900, 900), 5, size=(60, 3))
    pts = np.unique(
        np.clip(np.rint(np.vstack([big, far])), 1, 1024).astype(np.int64), axis=0
    )
    Z_oblivious = np.array([[300.0, 300, 300], [380, 300, 300], [460, 300, 300]])
    Z_covering = np.array([[300.0, 300, 300], [380, 300, 300], [900, 900, 900]])
    return pts, [Z_oblivious, Z_covering]


def _worst_ratio(points, weights, pts, Zs, caps, eta=0.25):
    worst = 1.0
    for Z in Zs:
        for t in caps:
            c_full = capacitated_cost(pts, Z, t, 2.0)
            c_sum = capacitated_cost(points, Z, (1 + eta) * t, 2.0, weights=weights)
            c_rel = capacitated_cost(pts, Z, (1 + eta) ** 2 * t, 2.0)
            if math.isinf(c_full) and math.isinf(c_sum):
                continue
            up = c_sum / c_full if c_full > 0 else math.inf
            lo = c_rel / c_sum if c_sum > 0 else math.inf
            worst = max(worst, up, lo)
    return worst


@pytest.mark.benchmark(group="E6")
def test_e6_equal_size_comparison(benchmark):
    pts, Zs = _far_cluster_instance()
    n, k = len(pts), 3
    caps = [n / k * 1.2, n / k * 2.0]

    # Aggressive compression profile so the summaries are genuinely small
    # (~3% of n) — the regime where the baselines' variance matters.
    params = CoresetParams.practical(k=k, d=3, delta=1024).with_overrides(
        threshold_c=4.0, gamma=0.25, phi_numerator=32.0
    )
    ours = build_coreset_auto(pts, params, seed=9)
    size = len(ours)

    rows = []
    worst_ours = _worst_ratio(ours.points, ours.weights, pts, Zs, caps)
    rows.append(["this paper", size, 1, "yes", round(worst_ours, 3)])

    uni = [_worst_ratio(u.points, u.weights, pts, Zs, caps)
           for u in (uniform_coreset(pts, size, seed=s) for s in range(6))]
    rows.append(["uniform (median of 6)", size, 1, "yes",
                 round(float(np.median(uni)), 3)])
    rows.append(["uniform (worst of 6)", size, 1, "yes",
                 round(float(np.max(uni)), 3)])

    sen = [_worst_ratio(s_.points, s_.weights, pts, Zs, caps)
           for s_ in (sensitivity_coreset(pts, k, size, seed=s) for s in range(6))]
    rows.append(["sensitivity (median of 6)", size, 1, "yes",
                 round(float(np.median(sen)), 3)])
    rows.append(["sensitivity (worst of 6)", size, 1, "yes",
                 round(float(np.max(sen)), 3)])

    bl = ThreePassMappingCoreset(k=k, num_representatives=size, seed=1)
    ws = bl.run(insertion_stream(pts, seed=4))
    rows.append(["[BBLM14] mapping", len(ws), 3, "no",
                 round(_worst_ratio(ws.points, ws.weights, pts, Zs, caps), 3)])

    print_table(
        "E6: worst two-sided capacitated ratio at equal summary size "
        f"(far-cluster instance, n={n}, k={k}; bound 1+ε = 1.25)",
        ["method", "size", "passes", "dynamic", "worst ratio"],
        rows,
    )
    assert worst_ours <= 1.25
    # Who wins: uniform must blow past the bound on at least one seed.
    assert float(np.max(uni)) > 1.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E6")
def test_e6_uniform_misses_far_cluster(benchmark):
    """Mechanism check: the uniform failure is literally 'no far point in
    the sample', while the paper's partition always allocates samples to the
    far region's parts."""
    pts, _ = _far_cluster_instance(seed=7)
    params = CoresetParams.practical(k=3, d=3, delta=1024).with_overrides(
        threshold_c=4.0, gamma=0.25, phi_numerator=32.0
    )
    ours = build_coreset_auto(pts, params, seed=11)
    size = len(ours)
    far_true = int((pts[:, 0] > 700).sum())
    far_ours = int((ours.points[:, 0] > 700).sum())
    far_w = float(ours.weights[ours.points[:, 0] > 700].sum())
    miss = sum(
        1 for s in range(10)
        if not (uniform_coreset(pts, size, seed=s).points[:, 0] > 700).any()
    )
    print_table(
        "E6b: far-cluster representation (60 far points of "
        f"{len(pts)}; summaries of size {size})",
        ["method", "far points kept", "far weight / true", "missed entirely"],
        [["this paper", far_ours, round(far_w / far_true, 3), "0/1 run"],
         ["uniform", "varies", "n/a", f"{miss}/10 runs"]],
    )
    assert far_ours > 0
    assert abs(far_w - far_true) / far_true < 0.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
