"""E5 — End-to-end capacitated clustering via the coreset (Fact 2.3, §3.3).

Claim: running an (α, β)-approximate capacitated solver on the coreset and
extending its assignment to Q yields a ((1+O(ε))α, (1+O(η))β)-approximate
solution of the full problem, at a fraction of the cost of solving on Q.

Table: solve-on-coreset vs solve-on-full — cost ratio, capacity violation,
wall-clock speedup of the solve phase — for k-means and k-median.
"""

from __future__ import annotations

import time

import pytest

from common import (
    build_standard_coreset,
    make_mixture,
    make_unbalanced,
    print_table,
    standard_params,
)
from repro.assignment.capacitated import assignment_cost, cluster_sizes
from repro.assignment.transfer import extend_assignment_to_points
from repro.grid.grids import HierarchicalGrids
from repro.solvers import CapacitatedKClustering
from repro.utils.rng import derive_seed


def _run(tag, pts, k, r, slack=1.15, seed=7):
    n = len(pts)
    params = standard_params(k, pts.shape[1], 1024, r=r)
    grids = HierarchicalGrids(params.delta, params.d,
                              seed=derive_seed(seed, "grids"))
    t_build0 = time.time()
    cs = build_standard_coreset(pts, params, seed=seed)
    # The coreset was built with the same derived grid seed inside
    # build_coreset_auto; rebuild grids identically for the extension.
    build_s = time.time() - t_build0
    t = n / k * slack

    # Solve on the coreset (weighted capacitated solver).
    t0 = time.time()
    solver = CapacitatedKClustering(k=k, capacity=cs.total_weight / k * slack,
                                    r=r, restarts=2, seed=seed)
    sol_core = solver.fit(cs.points.astype(float), weights=cs.weights)
    labels_full = extend_assignment_to_points(
        pts, cs, params, grids, sol_core.centers, t, r=r)
    core_s = time.time() - t0
    core_cost = assignment_cost(pts, sol_core.centers, labels_full, r)
    core_sizes = cluster_sizes(labels_full, k)

    # Solve directly on the full set (same solver, same budget).
    t0 = time.time()
    solver_full = CapacitatedKClustering(k=k, capacity=t, r=r, restarts=2,
                                         seed=seed)
    sol_full = solver_full.fit(pts.astype(float))
    full_s = time.time() - t0

    return [tag, n, len(cs),
            round(core_cost / sol_full.cost, 3),
            round(core_sizes.max() / t, 3),
            round(sol_full.max_violation(), 3),
            round(build_s + core_s, 1), round(full_s, 1),
            round(full_s / max(core_s + build_s, 1e-9), 1)]


@pytest.mark.benchmark(group="E5")
def test_e5_kmeans(benchmark):
    rows = []
    pts, _ = make_mixture(16000, 3, 1024, 4, seed=41)
    rows.append(_run("balanced r=2", pts, 4, 2.0))
    upts, _ = make_unbalanced(16000, 3, 1024, 4, seed=42)
    rows.append(_run("unbalanced r=2", upts, 4, 2.0))
    print_table(
        "E5a: end-to-end capacitated k-means via coreset (t = 1.15 n/k)",
        ["input", "n", "|Q'|", "cost ratio", "violation (core)",
         "violation (full)", "core sec", "full sec", "speedup"],
        rows,
    )
    # Who wins: the coreset pipeline must be within (1+O(ε)) of the direct
    # solve and much faster.
    for r in rows:
        assert r[3] <= 1.6      # cost ratio (heuristic solvers both sides)
        assert r[4] <= 1.6      # capacity violation (1+O(η))
        assert r[8] >= 0.4      # at worst comparable to the direct solve
    # The speedup grows with how hard the direct solve is; the unbalanced
    # instance (where the flow step dominates) must show a large win.
    assert max(r[8] for r in rows) >= 2.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E5")
def test_e5_black_box_solvers(benchmark):
    """Fact 2.3 is black-box in the solver: two independent (α, β)
    approximations on the same coreset must land in the same quality band."""
    from repro.core import build_coreset_auto
    from repro.metrics.costs import capacitated_cost
    from repro.solvers.lp_rounding import lp_rounding_capacitated

    pts, _ = make_unbalanced(8000, 2, 1024, 3, seed=45)
    n, k = len(pts), 3
    params = standard_params(k, 2, 1024)
    cs = build_coreset_auto(pts, params, seed=7)
    t_core = cs.total_weight / k * 1.15
    t_full = n / k * 1.15

    rows = []
    alt = CapacitatedKClustering(k=k, capacity=t_core, restarts=2, seed=7).fit(
        cs.points.astype(float), weights=cs.weights)
    lp = lp_rounding_capacitated(cs.points.astype(float), k, t_core,
                                 weights=cs.weights, seed=7)
    for tag, centers in (("alternating flow", alt.centers),
                         ("LP rounding", lp.centers)):
        true_cost = capacitated_cost(pts, centers, t_full, 2.0)
        rows.append([tag, f"{true_cost:.4g}"])
    print_table(
        "E5c: two black-box solvers on the same coreset (true capacitated "
        "cost of their centers on the full input)",
        ["solver on coreset", "cost_t(Q, Z_solver)"],
        rows,
    )
    costs = [float(r[1]) for r in rows]
    assert max(costs) <= 2.5 * min(costs)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E5")
def test_e5_kmedian(benchmark):
    rows = []
    pts, _ = make_mixture(12000, 3, 1024, 3, seed=43)
    rows.append(_run("balanced r=1", pts, 3, 1.0))
    print_table(
        "E5b: end-to-end capacitated k-median via coreset",
        ["input", "n", "|Q'|", "cost ratio", "violation (core)",
         "violation (full)", "core sec", "full sec", "speedup"],
        rows,
    )
    assert rows[0][3] <= 1.6
    assert rows[0][4] <= 1.6
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
