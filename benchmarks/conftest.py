"""Benchmark configuration: make `pytest benchmarks/ --benchmark-only` work
and always show the experiment tables (-s is implied via printing at teardown).
"""

import sys
from pathlib import Path

# Allow `from common import ...` inside the benchmarks directory.
sys.path.insert(0, str(Path(__file__).parent))
