"""Service benchmark — sharded ingest throughput and query-cache latency.

The numbers every later scaling PR moves: (a) ingest events/sec through the
sharded layer vs shard count, (b) cold (merge + decode + solve) vs cached
query latency, and (c) checkpoint write/restore time — measured from this
PR onward so the trajectory is visible.
"""

from __future__ import annotations

import time

import pytest

from common import make_mixture, print_table
from repro.data.workloads import churn_stream
from repro.service import ClusteringService, ServiceConfig, ShardedIngest
from repro.solvers.pilot import estimate_opt_cost
from repro.streaming import materialize
from repro.core import CoresetParams


def _workload(n: int = 4000, delta: int = 1024, seed: int = 3):
    pts, _ = make_mixture(n, 2, delta, 3, seed=seed)
    stream = churn_stream(pts, delete_fraction=0.3, seed=seed)
    survivors = materialize(stream, d=2)
    pilot = estimate_opt_cost(survivors, 3, r=2.0, seed=seed)
    return stream, survivors, pilot


@pytest.mark.benchmark(group="service")
def test_service_ingest_throughput_vs_shards(benchmark):
    """Events/sec through apply_batch as the shard count grows.

    Shards are independent sketches, so per-event work is flat in N — the
    table checks sharding costs nothing before it buys parallelism."""
    params = CoresetParams.practical(k=3, d=2, delta=1024)
    stream, survivors, pilot = _workload()
    orange = (pilot / 16, pilot / 4)
    rows = []
    for shards in (1, 2, 4, 8):
        ing = ShardedIngest(params, num_shards=shards, seed=9,
                            backend="exact", o_range=orange)
        t0 = time.time()
        ing.apply_batch(stream)
        dt = time.time() - t0
        rows.append([shards, len(stream), round(dt, 2),
                     int(len(stream) / max(dt, 1e-9)),
                     ing.space_bits() // 8000])
    print_table(
        "service: sharded ingest throughput (k=3, d=2, Δ=1024; 30% churn)",
        ["shards", "events", "sec", "events/sec", "state KB"],
        rows,
    )
    # Per-event cost must not degrade materially with shard count.
    assert rows[-1][3] >= rows[0][3] / 3
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="service")
def test_service_query_cache_latency(benchmark):
    """Cold query (merge + assemble + solve) vs memoized repeat query."""
    stream, survivors, pilot = _workload(n=3000)
    config = ServiceConfig(k=3, d=2, delta=1024, num_shards=4, seed=9,
                           o_range=(pilot / 16, pilot / 4))
    svc = ClusteringService(config)
    svc.apply_events(stream)

    t0 = time.time()
    cold, hit_cold = svc.query()
    cold_s = time.time() - t0
    t0 = time.time()
    warm, hit_warm = svc.query()
    warm_s = time.time() - t0
    assert not hit_cold and hit_warm

    t0 = time.time()
    info = svc.checkpoint("/tmp/bench_service.ckpt.json")
    ckpt_s = time.time() - t0
    t0 = time.time()
    ClusteringService.restore("/tmp/bench_service.ckpt.json")
    restore_s = time.time() - t0

    print_table(
        "service: query & checkpoint latency (4 shards)",
        ["events", "|Q'|", "cold query s", "cached query s", "speedup",
         "checkpoint s", "restore s"],
        [[info["events"], cold.coreset_size, round(cold_s, 3),
          round(warm_s, 6), int(cold_s / max(warm_s, 1e-9)),
          round(ckpt_s, 3), round(restore_s, 3)]],
    )
    # The memoized path must be orders of magnitude below a fresh solve.
    assert warm_s < cold_s / 10
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
