"""Service benchmark — sharded ingest throughput and query-cache latency.

The numbers every later scaling PR moves: (a) ingest events/sec through the
sharded layer vs shard count, (b) serial vs process-parallel ingest through
the same shard layout (bit-identical results, wall-clock diverges with
cores), (c) cold (merge + decode + solve) vs cached query latency, and
(d) checkpoint write/restore time — measured from this PR onward so the
trajectory is visible.

Also runnable as a script (spawn-safe: workers re-import this file, so it
must stay a real file, never piped through stdin)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke

which runs a reduced serial-vs-parallel curve plus an ingest/query latency
percentile pass (p50/p95/p99) and **appends** both records to
``BENCH_service.json`` at the repo root (``make bench-smoke``) — runs
accumulate as a history rather than overwriting each other.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from common import append_bench_record, make_mixture, print_table
from repro.core import CoresetParams
from repro.data.workloads import churn_stream
from repro.service import (
    ClusteringService,
    ServiceConfig,
    ShardedIngest,
    WorkerPoolIngest,
)
from repro.solvers.pilot import estimate_opt_cost
from repro.streaming import materialize


def _workload(n: int = 4000, delta: int = 1024, seed: int = 3):
    pts, _ = make_mixture(n, 2, delta, 3, seed=seed)
    stream = churn_stream(pts, delete_fraction=0.3, seed=seed)
    survivors = materialize(stream, d=2)
    pilot = estimate_opt_cost(survivors, 3, r=2.0, seed=seed)
    return stream, survivors, pilot


def _canonical(state_dict: dict) -> str:
    return json.dumps(state_dict, sort_keys=True)


def run_parallel_curve(n: int = 4000, delta: int = 1024,
                       workers: tuple = (2, 4), batch: int = 1024,
                       seed: int = 3) -> dict:
    """Serial vs process-parallel ingest over the same shard layout.

    For each worker count W, feed the identical chunked stream through
    ``ShardedIngest(num_shards=W)`` (serial baseline) and
    ``WorkerPoolIngest(num_workers=W)``, timing enqueue *plus drain* for
    the pool (``worker_stats`` queues behind all batches), and check the
    two checkpoints are byte-identical.  Pool spawn time is reported
    separately — it is a fixed startup cost, not ingest throughput.
    """
    params = CoresetParams.practical(k=3, d=2, delta=delta)
    stream, _, pilot = _workload(n=n, delta=delta, seed=seed)
    orange = (pilot / 16, pilot / 4)
    events = list(stream)
    chunks = [events[lo: lo + batch] for lo in range(0, len(events), batch)]
    rows = []
    for w in workers:
        serial = ShardedIngest(params, num_shards=w, seed=9,
                               backend="exact", o_range=orange)
        t0 = time.perf_counter()
        for chunk in chunks:
            serial.apply_batch(chunk)
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        pool = WorkerPoolIngest(params, num_workers=w, seed=9,
                                backend="exact", o_range=orange)
        spawn_s = time.perf_counter() - t0
        try:
            t0 = time.perf_counter()
            for chunk in chunks:
                pool.apply_batch(chunk)
            pool.worker_stats()  # drain barrier: all batches processed
            pool_s = time.perf_counter() - t0
            identical = (_canonical(pool.to_state_dict())
                         == _canonical(serial.to_state_dict()))
        finally:
            pool.close()
        rows.append({
            "workers": w,
            "events": len(events),
            "serial_s": round(serial_s, 3),
            "parallel_s": round(pool_s, 3),
            "spawn_s": round(spawn_s, 3),
            "serial_eps": int(len(events) / max(serial_s, 1e-9)),
            "parallel_eps": int(len(events) / max(pool_s, 1e-9)),
            "speedup": round(serial_s / max(pool_s, 1e-9), 2),
            "bit_identical": identical,
        })
    return {
        "bench": "service parallel vs serial ingest",
        "cpu_count": os.cpu_count(),
        "n_points": n,
        "delta": delta,
        "batch": batch,
        "rows": rows,
    }


def run_scalar_vs_batched(n: int = 4000, delta: int = 1024,
                          batch: int = 1024, seed: int = 3) -> dict:
    """Scalar per-event ``update`` vs vectorized ``update_batch``, same driver.

    The batched path is only allowed to exist because it is bit-identical
    to the scalar reference — this pass re-checks that on the bench
    workload (checkpoint bytes compared) while timing both, and records
    the speedup ratio so a regression that quietly falls back to scalar
    work shows up in the bench history.
    """
    params = CoresetParams.practical(k=3, d=2, delta=delta)
    stream, _, pilot = _workload(n=n, delta=delta, seed=seed)
    orange = (pilot / 16, pilot / 4)
    events = list(stream)

    from repro.service.state import streaming_state_to_dict
    from repro.streaming.streaming_coreset import StreamingCoreset

    scalar = StreamingCoreset(params, seed=9, backend="exact", o_range=orange)
    t0 = time.perf_counter()
    for ev in events:
        scalar.update(ev.point, ev.sign)
    scalar_s = time.perf_counter() - t0

    batched = StreamingCoreset(params, seed=9, backend="exact", o_range=orange)
    t0 = time.perf_counter()
    for lo in range(0, len(events), batch):
        batched.update_batch(events[lo: lo + batch])
    batched_s = time.perf_counter() - t0

    identical = (_canonical(streaming_state_to_dict(scalar))
                 == _canonical(streaming_state_to_dict(batched)))
    return {
        "bench": "scalar vs batched ingest",
        "n_points": n,
        "delta": delta,
        "batch": batch,
        "events": len(events),
        "scalar_s": round(scalar_s, 3),
        "batched_s": round(batched_s, 3),
        "scalar_eps": int(len(events) / max(scalar_s, 1e-9)),
        "batched_eps": int(len(events) / max(batched_s, 1e-9)),
        "scalar_vs_batched": round(scalar_s / max(batched_s, 1e-9), 2),
        "bit_identical": identical,
    }


def _percentiles(samples_s: list[float]) -> dict:
    """p50/p95/p99 of a latency sample, in milliseconds."""
    ms = np.asarray(samples_s) * 1e3
    return {p: round(float(np.percentile(ms, q)), 3)
            for p, q in (("p50", 50), ("p95", 95), ("p99", 99))}


def run_latency_percentiles(n: int = 3000, delta: int = 256,
                            batch: int = 256, queries: int = 12,
                            seed: int = 3) -> dict:
    """Tail-latency profile of one service: per-batch ingest, cold query
    (merge + assemble + solve after an invalidating ingest) and cached
    query (version-keyed memo hit).  Tails, not means — the p99 is what a
    caller sharing the server actually waits."""
    stream, _, pilot = _workload(n=n, delta=delta, seed=seed)
    events = list(stream)
    config = ServiceConfig(k=3, d=2, delta=delta, num_shards=2, seed=9,
                           o_range=(pilot / 16, pilot / 4))
    svc = ClusteringService(config)
    try:
        ingest_s = []
        for lo in range(0, len(events), batch):
            t0 = time.perf_counter()
            svc.apply_events(events[lo: lo + batch])
            ingest_s.append(time.perf_counter() - t0)
        cold_s, cached_s = [], []
        probe = np.asarray([[1, 1]])
        for _ in range(queries):
            svc.insert(probe)  # bump the version: next query is a miss
            t0 = time.perf_counter()
            _, hit = svc.query()
            cold_s.append(time.perf_counter() - t0)
            assert not hit
            t0 = time.perf_counter()
            _, hit = svc.query()
            cached_s.append(time.perf_counter() - t0)
            assert hit
        return {
            "bench": "service latency percentiles",
            "n_points": n,
            "delta": delta,
            "batch": batch,
            "events": len(events) + queries,
            "queries": queries,
            "ingest_batch_ms": _percentiles(ingest_s),
            "query_cold_ms": _percentiles(cold_s),
            "query_cached_ms": _percentiles(cached_s),
        }
    finally:
        svc.close()


def _latency_rows(report: dict) -> list[list]:
    return [[name, report[key]["p50"], report[key]["p95"], report[key]["p99"]]
            for name, key in (("ingest batch", "ingest_batch_ms"),
                              ("query cold", "query_cold_ms"),
                              ("query cached", "query_cached_ms"))]


@pytest.mark.benchmark(group="service")
def test_service_latency_percentiles(benchmark):
    """Ingest/query tail latency; the cached-query tail must stay far below
    the cold-solve median."""
    report = run_latency_percentiles(n=2000, queries=8)
    print_table(
        f"service: latency percentiles (ms; batch={report['batch']}, "
        f"{report['events']} events)",
        ["path", "p50", "p95", "p99"],
        _latency_rows(report),
    )
    assert report["query_cached_ms"]["p99"] < report["query_cold_ms"]["p50"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="service")
def test_service_ingest_throughput_vs_shards(benchmark):
    """Events/sec through apply_batch as the shard count grows.

    Shards are independent sketches, so per-event work is flat in N — the
    table checks sharding costs nothing before it buys parallelism."""
    params = CoresetParams.practical(k=3, d=2, delta=1024)
    stream, survivors, pilot = _workload()
    orange = (pilot / 16, pilot / 4)
    rows = []
    for shards in (1, 2, 4, 8):
        ing = ShardedIngest(params, num_shards=shards, seed=9,
                            backend="exact", o_range=orange)
        t0 = time.time()
        ing.apply_batch(stream)
        dt = time.time() - t0
        rows.append([shards, len(stream), round(dt, 2),
                     int(len(stream) / max(dt, 1e-9)),
                     ing.space_bits() // 8000])
    print_table(
        "service: sharded ingest throughput (k=3, d=2, Δ=1024; 30% churn)",
        ["shards", "events", "sec", "events/sec", "state KB"],
        rows,
    )
    # Per-event cost must not degrade materially with shard count.
    assert rows[-1][3] >= rows[0][3] / 3
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="service")
def test_service_query_cache_latency(benchmark):
    """Cold query (merge + assemble + solve) vs memoized repeat query."""
    stream, survivors, pilot = _workload(n=3000)
    config = ServiceConfig(k=3, d=2, delta=1024, num_shards=4, seed=9,
                           o_range=(pilot / 16, pilot / 4))
    svc = ClusteringService(config)
    svc.apply_events(stream)

    t0 = time.time()
    cold, hit_cold = svc.query()
    cold_s = time.time() - t0
    t0 = time.time()
    warm, hit_warm = svc.query()
    warm_s = time.time() - t0
    assert not hit_cold and hit_warm

    t0 = time.time()
    info = svc.checkpoint("/tmp/bench_service.ckpt.json")
    ckpt_s = time.time() - t0
    t0 = time.time()
    ClusteringService.restore("/tmp/bench_service.ckpt.json")
    restore_s = time.time() - t0

    print_table(
        "service: query & checkpoint latency (4 shards)",
        ["events", "|Q'|", "cold query s", "cached query s", "speedup",
         "checkpoint s", "restore s"],
        [[info["events"], cold.coreset_size, round(cold_s, 3),
          round(warm_s, 6), int(cold_s / max(warm_s, 1e-9)),
          round(ckpt_s, 3), round(restore_s, 3)]],
    )
    # The memoized path must be orders of magnitude below a fresh solve.
    assert warm_s < cold_s / 10
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="service")
def test_service_parallel_vs_serial_ingest(benchmark):
    """Worker-process ingest vs the in-process baseline, same shard layout.

    Correctness is unconditional: the two backends' checkpoints must be
    byte-identical at every worker count.  The ≥2× throughput claim is
    asserted only on machines with ≥4 cores — on fewer cores the worker
    processes time-slice one CPU and the table just records the overhead.
    """
    report = run_parallel_curve(n=4000, delta=1024, workers=(2, 4),
                                batch=1024)
    print_table(
        f"service: parallel vs serial ingest "
        f"({report['cpu_count']} cores; batch={report['batch']})",
        ["workers", "events", "serial s", "parallel s", "spawn s",
         "serial ev/s", "parallel ev/s", "speedup", "bit-identical"],
        [[r["workers"], r["events"], r["serial_s"], r["parallel_s"],
          r["spawn_s"], r["serial_eps"], r["parallel_eps"], r["speedup"],
          r["bit_identical"]] for r in report["rows"]],
    )
    assert all(r["bit_identical"] for r in report["rows"])
    cores = os.cpu_count() or 1
    if cores >= 4:
        four = [r for r in report["rows"] if r["workers"] == 4]
        assert four and four[0]["speedup"] >= 2.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _smoke(argv=None) -> dict:
    """Reduced curve for CI: 2 workers, small stream, appended JSON record."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes + append to BENCH_service.json")
    parser.add_argument("--workers", type=int, nargs="+", default=None)
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_service.json; runs append)")
    args = parser.parse_args(argv)
    if args.smoke:
        n = args.n or 1500
        workers = tuple(args.workers or (2,))
        delta, batch, queries = 256, 512, 6
    else:
        n = args.n or 4000
        workers = tuple(args.workers or (2, 4))
        delta, batch, queries = 1024, 1024, 12
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    report = run_parallel_curve(n=n, delta=delta, workers=workers,
                                batch=batch)
    report["timestamp"] = stamp
    latency = run_latency_percentiles(n=n, delta=delta,
                                      batch=batch, queries=queries)
    latency["timestamp"] = stamp
    vector = run_scalar_vs_batched(n=n, delta=delta, batch=batch)
    vector["timestamp"] = stamp
    out = append_bench_record(report, out=args.out)
    append_bench_record(latency, out=args.out)
    append_bench_record(vector, out=args.out)
    print_table(
        f"service: parallel vs serial ingest smoke "
        f"({report['cpu_count']} cores) -> {out}",
        ["workers", "events", "serial s", "parallel s", "spawn s",
         "speedup", "bit-identical"],
        [[r["workers"], r["events"], r["serial_s"], r["parallel_s"],
          r["spawn_s"], r["speedup"], r["bit_identical"]]
         for r in report["rows"]],
    )
    print_table(
        f"service: latency percentiles (ms; batch={latency['batch']})",
        ["path", "p50", "p95", "p99"],
        _latency_rows(latency),
    )
    print_table(
        f"service: scalar vs batched ingest (batch={vector['batch']})",
        ["events", "scalar ev/s", "batched ev/s", "speedup", "bit-identical"],
        [[vector["events"], vector["scalar_eps"], vector["batched_eps"],
          vector["scalar_vs_batched"], vector["bit_identical"]]],
    )
    if not all(r["bit_identical"] for r in report["rows"]):
        raise SystemExit("FAIL: parallel ingest state diverged from serial")
    if not vector["bit_identical"]:
        raise SystemExit("FAIL: batched ingest state diverged from scalar")
    if vector["scalar_vs_batched"] < 1.0:
        raise SystemExit(
            f"FAIL: batched ingest slower than scalar "
            f"({vector['batched_eps']} vs {vector['scalar_eps']} ev/s)")
    return report


if __name__ == "__main__":
    _smoke()
