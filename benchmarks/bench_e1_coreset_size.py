"""E1 — Coreset size scaling (Theorem 1.1 / 3.19).

Claim: |Q'| ≤ poly(ε⁻¹η⁻¹ k d log Δ), *independent of n*.

Table rows: (sweep variable, n, coreset size, compression n/|Q'|, accepted o,
construction seconds).  The shape to check: size saturates as n grows, and
grows polynomially (mildly) in k, d, and 1/ε.
"""

from __future__ import annotations

import time

import pytest

from common import build_standard_coreset, make_mixture, print_table, standard_params


def _row(tag, pts, params, seed=7):
    t0 = time.time()
    cs = build_standard_coreset(pts, params, seed=seed)
    dt = time.time() - t0
    return [tag, len(pts), len(cs), round(len(pts) / max(len(cs), 1), 2),
            f"{cs.o:.3g}", round(dt, 2)], cs


@pytest.mark.benchmark(group="E1")
def test_e1_size_vs_n(benchmark):
    rows = []
    for n in (4000, 8000, 16000, 32000):
        pts, _ = make_mixture(n, 3, 1024, 4, seed=1)
        params = standard_params(4, 3, 1024)
        row, _ = _row(f"n={n}", pts, params)
        rows.append(row)
    print_table("E1a: coreset size vs n (k=4, d=3, Δ=1024, ε=η=0.25)",
                ["sweep", "n", "|Q'|", "n/|Q'|", "o", "sec"], rows)
    pts, _ = make_mixture(16000, 3, 1024, 4, seed=1)
    params = standard_params(4, 3, 1024)
    benchmark.pedantic(build_standard_coreset, args=(pts, params),
                       rounds=1, iterations=1)
    sizes = [r[2] for r in rows]
    # Size must saturate: growing n 8x grows the coreset far less than 8x.
    assert sizes[-1] < 4 * sizes[0]


@pytest.mark.benchmark(group="E1")
def test_e1_size_vs_k_d_eps(benchmark):
    rows = []
    for k in (2, 4, 8):
        pts, _ = make_mixture(16000, 3, 1024, k, seed=2)
        row, _ = _row(f"k={k}", pts, standard_params(k, 3, 1024))
        rows.append(row)
    for d in (2, 3, 4):
        pts, _ = make_mixture(16000, d, 1024, 4, seed=3)
        row, _ = _row(f"d={d}", pts, standard_params(4, d, 1024))
        rows.append(row)
    for eps in (0.1, 0.25, 0.4):
        pts, _ = make_mixture(16000, 3, 1024, 4, seed=4)
        row, _ = _row(f"eps={eps}", pts, standard_params(4, 3, 1024, eps=eps, eta=eps))
        rows.append(row)
    print_table("E1b: coreset size vs k, d, ε (n=16000)",
                ["sweep", "n", "|Q'|", "n/|Q'|", "o", "sec"], rows)
    pts, _ = make_mixture(8000, 3, 1024, 4, seed=2)
    benchmark.pedantic(build_standard_coreset, args=(pts, standard_params(4, 3, 1024)),
                       rounds=1, iterations=1)


@pytest.mark.benchmark(group="E1")
def test_e1_theory_vs_practical_storage(benchmark):
    """Storage bits of the coreset vs the paper's per-point unit d·logΔ."""
    rows = []
    for n in (8000, 16000):
        pts, _ = make_mixture(n, 3, 1024, 4, seed=5)
        params = standard_params(4, 3, 1024)
        cs = build_standard_coreset(pts, params)
        from repro.utils.bits import point_bits

        raw = len(pts) * point_bits(3, 1024)
        rows.append([f"n={n}", len(cs), cs.storage_bits(),
                     raw, round(raw / cs.storage_bits(), 2)])
    print_table("E1c: coreset storage bits vs raw input bits",
                ["sweep", "|Q'|", "coreset bits", "input bits", "ratio"], rows)
    pts, _ = make_mixture(4000, 3, 1024, 4, seed=5)
    benchmark.pedantic(build_standard_coreset,
                       args=(pts, standard_params(4, 3, 1024)),
                       rounds=1, iterations=1)
