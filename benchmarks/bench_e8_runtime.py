"""E8 — Construction time (Theorem 3.19).

Claim: the offline construction runs in O(n·d·log²(ndΔ)) — near-linear.

Table: wall-clock vs n (fixed d) and vs d (fixed n); the per-point time must
be essentially flat in n (up to the log² factor) and mildly growing in d.
"""

from __future__ import annotations

import time

import pytest

from common import build_standard_coreset, make_mixture, print_table, standard_params
from repro.core import build_coreset
from repro.grid.grids import HierarchicalGrids
from repro.solvers.pilot import estimate_opt_cost
from repro.utils.rng import derive_seed


@pytest.mark.benchmark(group="E8")
def test_e8_runtime_vs_n(benchmark):
    rows = []
    per_point = []
    for n in (8000, 16000, 32000, 64000):
        pts, _ = make_mixture(n, 3, 1024, 4, seed=71)
        params = standard_params(4, 3, 1024)
        pilot = estimate_opt_cost(pts, 4, r=2.0, seed=1)
        grids = HierarchicalGrids(1024, 3, seed=derive_seed(7, "grids"))
        t0 = time.time()
        cs = build_coreset(pts, params, pilot / 8, grids=grids, seed=7)
        dt = time.time() - t0
        per_point.append(dt / len(pts) * 1e6)
        rows.append([len(pts), len(cs), round(dt, 3),
                     round(dt / len(pts) * 1e6, 2)])
    print_table(
        "E8a: offline construction time vs n (single guess o; k=4, d=3)",
        ["n", "|Q'|", "sec", "µs/point"],
        rows,
    )
    # Near-linear: per-point time grows by at most ~2.5x over an 8x n range.
    assert per_point[-1] <= 2.5 * per_point[0] + 5
    pts, _ = make_mixture(16000, 3, 1024, 4, seed=71)
    params = standard_params(4, 3, 1024)
    benchmark.pedantic(build_standard_coreset, args=(pts, params),
                       rounds=1, iterations=1)


@pytest.mark.benchmark(group="E8")
def test_e8_runtime_vs_d(benchmark):
    rows = []
    for d in (2, 3, 4, 6):
        pts, _ = make_mixture(16000, d, 1024, 4, seed=72)
        params = standard_params(4, d, 1024)
        pilot = estimate_opt_cost(pts, 4, r=2.0, seed=1)
        grids = HierarchicalGrids(1024, d, seed=derive_seed(7, "grids"))
        t0 = time.time()
        cs = build_coreset(pts, params, pilot / 8, grids=grids, seed=7)
        dt = time.time() - t0
        rows.append([d, len(pts), len(cs), round(dt, 3)])
    print_table(
        "E8b: offline construction time vs d (n=16000, single guess)",
        ["d", "n", "|Q'|", "sec"],
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
