#!/usr/bin/env python
"""Balanced facility assignment: capacitated k-median on real-valued data.

Scenario: a delivery company places k depots and assigns customers to them;
every depot can serve at most t customers (fleet capacity).  Unconstrained
k-median would overload the depot of the densest area.  The demo shows the
full real-world pipeline:

1. real-valued customer coordinates → `grid.discretize` into [Δ]^d (the
   paper's model; cost distortion is a vanishing rounding term);
2. strong coreset → capacitated k-median (r=1) on the coreset;
3. map depot locations back to original coordinates and compare the load
   profile against the unconstrained solution.

Run:  python examples/balanced_warehouses.py
"""

from __future__ import annotations

import numpy as np

from repro import CoresetParams, build_coreset_auto
from repro.assignment.capacitated import capacitated_assignment, cluster_sizes
from repro.grid import discretize
from repro.metrics.distances import nearest_center
from repro.solvers import CapacitatedKClustering, lloyd
from repro.utils.rng import spawn_rng


def make_city(n: int, seed: int = 0) -> np.ndarray:
    """Customers: one dense downtown, two medium districts, rural sprawl."""
    rng = spawn_rng(seed, "city")
    downtown = rng.normal((2.0, 3.0), 0.35, size=(int(n * 0.55), 2))
    east = rng.normal((7.5, 4.0), 0.6, size=(int(n * 0.2), 2))
    north = rng.normal((4.0, 8.0), 0.6, size=(int(n * 0.2), 2))
    rural = rng.uniform((0, 0), (10, 10), size=(n - len(downtown) - len(east) - len(north), 2))
    return np.vstack([downtown, east, north, rural])


def main() -> None:
    k, delta = 3, 2048
    customers = make_city(15000, seed=2)
    grid_pts, transform = discretize(customers, delta)
    grid_pts = np.unique(grid_pts, axis=0)
    n = len(grid_pts)
    # Integer capacity: with unit demands the transportation polytope is then
    # integral, so the optimal assignment respects it exactly.
    capacity = int(n / k * 1.05)
    print(f"{n} distinct customer cells, k={k} depots, capacity {capacity:.0f}")

    # Coreset + capacitated k-median (r=1: robust to the rural outliers).
    params = CoresetParams.practical(k=k, d=2, delta=delta, r=1.0,
                                     eps=0.25, eta=0.25)
    coreset = build_coreset_auto(grid_pts, params, seed=9)
    print(f"coreset: {len(coreset)} points ({n / len(coreset):.1f}x compression)")

    solver = CapacitatedKClustering(k=k, capacity=coreset.total_weight / k * 1.05,
                                    r=1.0, restarts=3, seed=9)
    sol = solver.fit(coreset.points.astype(float), weights=coreset.weights)
    depots = transform.invert(sol.centers)
    print("balanced depots (original coords):")
    for i, z in enumerate(depots):
        print(f"  depot {i}: ({z[0]:.2f}, {z[1]:.2f})")

    # Assign all customers under capacity and compare with unconstrained.
    res = capacitated_assignment(grid_pts, sol.centers, capacity, r=1.0)
    balanced_sizes = cluster_sizes(res.labels, k)

    free = lloyd(grid_pts.astype(float), k, r=1.0, seed=9)
    free_labels, _ = nearest_center(grid_pts, free.centers, 1.0)
    free_sizes = cluster_sizes(free_labels, k)

    print(f"balanced loads:      {balanced_sizes.astype(int).tolist()} "
          f"(max/capacity = {balanced_sizes.max() / capacity:.3f})")
    print(f"unconstrained loads: {free_sizes.astype(int).tolist()} "
          f"(max/capacity = {free_sizes.max() / capacity:.3f})")
    print(f"price of balance: {res.cost / free.cost:.3f}x the unconstrained cost")
    assert balanced_sizes.max() <= capacity * (1 + 1e-9)


if __name__ == "__main__":
    main()
