#!/usr/bin/env python
"""Quickstart: build a capacitated-clustering coreset and use it.

Pipeline
--------
1. generate (or load) points and discretize them into the paper's [Δ]^d grid;
2. build a strong (η, ε)-coreset (Theorem 3.19) — a few hundred weighted
   points that preserve *every* capacitated clustering cost;
3. solve balanced k-means on the coreset only;
4. extend the coreset's assignment to every original point (Section 3.3)
   and compare against solving on the full data.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import CoresetParams, build_coreset_auto
from repro.assignment.capacitated import assignment_cost, cluster_sizes
from repro.assignment.transfer import extend_assignment_to_points
from repro.data.synthetic import unbalanced_mixture
from repro.grid.grids import HierarchicalGrids
from repro.solvers import CapacitatedKClustering
from repro.utils.rng import derive_seed


def main() -> None:
    # --- 1. data: an unbalanced mixture where capacity constraints bite. ---
    k, d, delta = 4, 3, 1024
    points = np.unique(
        unbalanced_mixture(20000, d, delta, k, imbalance=6.0, seed=1), axis=0
    )
    n = len(points)
    print(f"input: {n} points in [{delta}]^{d}, k={k}")

    # --- 2. the coreset. -----------------------------------------------------
    seed = 7
    params = CoresetParams.practical(k=k, d=d, delta=delta, eps=0.25, eta=0.25)
    t0 = time.time()
    coreset = build_coreset_auto(points, params, seed=seed)
    print(
        f"coreset: {len(coreset)} weighted points "
        f"({n / len(coreset):.1f}x compression) built in {time.time() - t0:.2f}s "
        f"(accepted guess o={coreset.o:.3g})"
    )

    # --- 3. balanced k-means on the coreset. --------------------------------
    capacity = n / k * 1.1  # each cluster may hold at most 110% of n/k
    solver = CapacitatedKClustering(
        k=k, capacity=coreset.total_weight / k * 1.1, r=2.0, seed=seed
    )
    t0 = time.time()
    solution = solver.fit(coreset.points.astype(float), weights=coreset.weights)
    print(f"solved on coreset in {time.time() - t0:.2f}s, cost {solution.cost:.4g}")

    # --- 4. extend the assignment to all original points. -------------------
    grids = HierarchicalGrids(delta, d, seed=derive_seed(seed, "grids"))
    labels = extend_assignment_to_points(
        points, coreset, params, grids, solution.centers, capacity, r=2.0
    )
    sizes = cluster_sizes(labels, k)
    full_cost = assignment_cost(points, solution.centers, labels, 2.0)
    print(f"extended to all {n} points: cost {full_cost:.4g}")
    print(f"cluster sizes: {sizes.astype(int).tolist()} (capacity {capacity:.0f})")
    print(f"max capacity violation: {sizes.max() / capacity:.3f} "
          f"(guarantee: 1+O(eta) = 1+O(0.25))")

    # --- reference: solve directly on the full input. ------------------------
    t0 = time.time()
    direct = CapacitatedKClustering(k=k, capacity=capacity, r=2.0, seed=seed).fit(
        points.astype(float)
    )
    print(
        f"direct solve on full data: cost {direct.cost:.4g} "
        f"in {time.time() - t0:.2f}s "
        f"-> coreset pipeline is within {full_cost / direct.cost:.3f}x"
    )


if __name__ == "__main__":
    main()
