#!/usr/bin/env python
"""Distributed coreset across a fleet of machines (Theorem 4.7) — twice.

Scenario: log events with spatial features are collected on s edge machines;
a coordinator must compute a *balanced* clustering of the global data (e.g.
assigning event regions to equally-provisioned processing pipelines) without
shipping all raw points.  The paper's distributed protocol leaves a strong
capacitated-clustering coreset at the coordinator using
s·poly(ε⁻¹η⁻¹kd·logΔ) bits.

Act 1 — the in-process simulation (`repro.distributed.protocol`):
partitions one dataset two ways — randomly, and adversarially by spatial
slabs so no machine sees the global structure — and shows both give the
same coreset (the protocol's sketches are linear) with exact
communication accounting.

Act 2 — the *real* deployment (`repro.distributed.fleet`): each site is
an actual ``repro serve`` subprocess fed over TCP; the coordinator pulls
every site's serialized sketch state over the wire (``pull_state``) and
merges through the same linearity.  The merged state and query answer are
bit-identical to a single-process reference, and the measured wire bits
equal the in-process simulation's accounting for the identical partition.

Run:  python examples/distributed_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro import CoresetParams
from repro.data.synthetic import gaussian_mixture
from repro.distributed import Network, distributed_coreset
from repro.metrics.costs import capacitated_cost
from repro.solvers import CapacitatedKClustering
from repro.utils.bits import point_bits


def simulated_protocol() -> None:
    """Act 1: Theorem 4.7 in one process, two adversarial partitions."""
    k, d, delta, s = 3, 2, 1024, 8
    points = np.unique(gaussian_mixture(12000, d, delta, k, spread=0.03, seed=3),
                       axis=0)
    n = len(points)
    raw_kb = n * point_bits(d, delta) / 8000
    print(f"global input: {n} points across {s} machines (raw {raw_kb:.0f} KB)")

    params = CoresetParams.practical(k=k, d=d, delta=delta, eps=0.25, eta=0.25)
    coresets = {}
    shared_o = None  # pilot from the first run; fixing o across partitions
    for mode in ("random", "skewed"):
        net = Network.partition(points, s, seed=4, mode=mode)
        cs = distributed_coreset(net, params, seed=17, o=shared_o)
        shared_o = cs.o  # the sketches are linear given the same guess o
        coresets[mode] = cs
        print(
            f"[{mode:>7}] coreset {len(cs)} points | communication: "
            f"up {net.uplink_bits / 8000:.0f} KB, down {net.downlink_bits / 8000:.0f} KB, "
            f"{net.messages} messages"
        )

    same = sorted(map(tuple, coresets["random"].points.tolist())) == sorted(
        map(tuple, coresets["skewed"].points.tolist())
    )
    print(f"coresets identical across partitions (sketch linearity): {same}")

    # The coordinator solves balanced clustering on its coreset.
    cs = coresets["random"]
    t = n / k * 1.1
    solver = CapacitatedKClustering(k=k, capacity=cs.total_weight / k * 1.1,
                                    r=2.0, seed=5)
    sol = solver.fit(cs.points.astype(float), weights=cs.weights)
    true_cost = capacitated_cost(points, sol.centers, t, r=2.0)
    est_cost = capacitated_cost(cs.points, sol.centers, 1.25 * t, r=2.0,
                                weights=cs.weights)
    print(f"coordinator solution: capacitated cost {true_cost:.4g} on the "
          f"global data, coreset estimate {est_cost:.4g} "
          f"(ratio {est_cost / true_cost:.3f})")


def real_fleet() -> None:
    """Act 2: the same protocol over real site subprocesses and sockets."""
    from repro.distributed.fleet import run_fleet
    from repro.service import ServiceConfig

    k, d, delta, s = 3, 2, 64, 2
    points = np.unique(
        gaussian_mixture(400, d, delta, k, spread=0.03, seed=6), axis=0)
    print(f"\nspawning {s} real `repro serve` sites for {len(points)} points "
          "(plus a 20% deletion stream)...")
    report = run_fleet(ServiceConfig(k=k, d=d, delta=delta, num_shards=2,
                                     seed=7, restarts=1),
                       points, s, batch_size=64, delete_fraction=0.2)
    print(f"fed {report['events']} events in {report['batches']} batches "
          f"({report['events_per_s']} events/s over TCP)")
    print(f"wire bits: up {report['uplink_bits']} "
          f"(simulation: {report['sim_uplink_bits']}), "
          f"down {report['downlink_bits']} "
          f"(simulation: {report['sim_downlink_bits']})")
    print(f"merged state bit-identical to single process: "
          f"{report['state_identical']}; query answer identical: "
          f"{report['answer_identical']}; bits match the E7 simulation: "
          f"{report['bits_match_simulation']}")
    if not report["passed"]:
        raise SystemExit("fleet run diverged from the reference")


def main() -> None:
    simulated_protocol()
    real_fleet()


if __name__ == "__main__":
    main()
