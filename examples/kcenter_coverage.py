#!/usr/bin/env python
"""Capacitated k-center: bounded worst-case distance with bounded load.

Scenario: place k emergency-response stations so that the *worst* distance
from any incident site to its assigned station is minimized — but every
station can serve at most t sites (crew capacity).  This is the r = ∞
member of the paper's capacitated ℓr class ("…and capacitated k-center
(r=∞)", §1), solved here with Gonzalez seeding plus the exact bottleneck
assignment (binary search over radii + flow feasibility).

The demo contrasts the capacitated and uncapacitated radii on a skewed
incident distribution: without capacities one station absorbs the dense
area at a small radius; with capacities the bottleneck radius grows —
that growth is the price of the load guarantee.

Run:  python examples/kcenter_coverage.py
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import unbalanced_mixture
from repro.metrics import gini, max_load_ratio
from repro.metrics.distances import nearest_center
from repro.solvers import capacitated_kcenter_assignment, gonzalez_seeding


def main() -> None:
    k, d, delta = 4, 2, 1024
    incidents = np.unique(
        unbalanced_mixture(3000, d, delta, k, imbalance=7.0, spread=0.04, seed=12),
        axis=0,
    ).astype(float)
    n = len(incidents)
    capacity = int(np.ceil(n / k * 1.1))
    print(f"{n} incident sites, k={k} stations, capacity {capacity} each")

    stations = gonzalez_seeding(incidents, k, seed=3)

    # Uncapacitated: everyone to the nearest station.
    labels_free, dr = nearest_center(incidents, stations, 1.0)
    radius_free = float(dr.max())
    print(f"uncapacitated radius: {radius_free:.1f} | "
          f"max load ratio {max_load_ratio(labels_free, k):.2f}, "
          f"load Gini {gini(labels_free, k):.3f}")

    # Capacitated bottleneck assignment.
    sol = capacitated_kcenter_assignment(incidents, stations, capacity)
    print(f"capacitated radius:   {sol.radius:.1f} | "
          f"max load ratio {max_load_ratio(sol.labels, k):.2f}, "
          f"load Gini {gini(sol.labels, k):.3f}")
    print(f"price of the load guarantee: radius x{sol.radius / radius_free:.2f}, "
          f"loads {sol.sizes.astype(int).tolist()} (cap {capacity})")
    assert (sol.sizes <= capacity + 1e-9).all()


if __name__ == "__main__":
    main()
