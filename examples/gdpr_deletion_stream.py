#!/usr/bin/env python
"""Dynamic stream with deletions: balanced clustering under data erasure.

Scenario: a service clusters user activity points into k capacity-bounded
shards (each shard's serving replica can hold at most t users).  Users come
and go; privacy regulation (GDPR-style erasure) means *deletions must be
first-class*: once a user is erased, the maintained summary must behave as
if their points never existed.

This is exactly Theorem 4.5's setting — the paper's single-pass dynamic
streaming coreset handles insertions *and* deletions, unlike the previous
three-pass insertion-only approach.  The demo:

1. streams in three regional user populations, then erases an entire region
   (the summary's heavy-cell structure must change, not just shrink);
2. finalizes the coreset and solves balanced k-means on it;
3. verifies against the ground-truth survivor set.

Run:  python examples/gdpr_deletion_stream.py
"""

from __future__ import annotations


from repro import CoresetParams
from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import deletion_heavy_stream
from repro.metrics.costs import capacitated_cost
from repro.solvers import CapacitatedKClustering, estimate_opt_cost
from repro.streaming import StreamingCoreset, materialize


def main() -> None:
    k, d, delta = 2, 2, 1024
    # Three "regions" of user locations; region 0 will be erased.
    points, means, region = gaussian_mixture(
        9000, d, delta, k=3, spread=0.03, seed=5, return_truth=True
    )
    stream = deletion_heavy_stream(points, region, delete_clusters=[0], seed=2)
    print(
        f"stream: {stream.num_insertions()} insertions, "
        f"{stream.num_deletions()} deletions (region 0 erased)"
    )

    survivors = materialize(stream, d=d)
    print(f"ground-truth survivors: {len(survivors)} points")

    # One pass over the stream.  The o_range plays the role of the parallel
    # OPT estimator of Theorem 4.5 (here seeded from the survivor set).
    params = CoresetParams.practical(k=k, d=d, delta=delta, eps=0.25, eta=0.25)
    pilot = estimate_opt_cost(survivors, k, r=2.0, seed=1)
    summary = StreamingCoreset(
        params, seed=11, backend="exact", o_range=(pilot / 64, pilot / 4)
    )
    summary.process(stream)
    coreset = summary.finalize()
    print(
        f"maintained coreset: {len(coreset)} weighted points "
        f"(total weight {coreset.total_weight:.0f} ~= survivors)"
    )

    # Every coreset point must be a *surviving* point: erased users are gone.
    survivor_set = set(map(tuple, survivors.tolist()))
    leaked = [p for p in coreset.points.tolist() if tuple(p) not in survivor_set]
    print(f"erased points leaked into the summary: {len(leaked)} (must be 0)")
    assert not leaked

    # Balanced clustering of the survivors into k shards of capacity t.
    t = len(survivors) / k * 1.15
    solver = CapacitatedKClustering(
        k=k, capacity=coreset.total_weight / k * 1.15, r=2.0, seed=3
    )
    sol = solver.fit(coreset.points.astype(float), weights=coreset.weights)
    true_cost = capacitated_cost(survivors, sol.centers, t, r=2.0)
    core_cost = capacitated_cost(
        coreset.points, sol.centers, 1.25 * t, r=2.0, weights=coreset.weights
    )
    print(f"shard centers found on the coreset; true capacitated cost "
          f"{true_cost:.4g}, coreset estimate {core_cost:.4g} "
          f"(ratio {core_cost / true_cost:.3f}, guarantee 1±0.25)")


if __name__ == "__main__":
    main()
