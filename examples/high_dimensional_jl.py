#!/usr/bin/env python
"""High-dimensional inputs via Johnson–Lindenstrauss (the [MMR19] remark).

Section 1.1: "if d is much larger than k/ε, we can apply [MMR19] to reduce
the dimension to poly(k/ε); then our streaming algorithm only needs
d·poly(k logΔ) space".  This example embeds 64-dimensional feature vectors
(think: document or user embeddings) into a low dimension, builds the
capacitated coreset there, and shows the balanced-clustering structure found
in the projected space transfers back to the original space.

Run:  python examples/high_dimensional_jl.py
"""

from __future__ import annotations

import numpy as np

from repro import CoresetParams, build_coreset_auto
from repro.assignment.capacitated import capacitated_assignment
from repro.data.synthetic import gaussian_mixture
from repro.dimred import jl_then_discretize
from repro.dimred.jl import jl_dimension
from repro.metrics.costs import capacitated_cost
from repro.solvers import CapacitatedKClustering
from repro.utils.bits import point_bits


def main() -> None:
    k, d_high, delta = 4, 64, 1024
    # High-dimensional mixture (well-separated in d=64).
    points_hd, _, planted = gaussian_mixture(
        12000, d_high, delta, k, spread=0.02, seed=6, return_truth=True
    )
    n = len(points_hd)
    d_low = max(6, jl_dimension(k, 0.5, c=1.0))
    print(f"{n} points in d={d_high}; projecting to d={d_low} "
          f"(the [MMR19] bound would allow up to {jl_dimension(k, 0.25)} dims "
          f"at ε=0.25 — well-separated mixtures need far fewer)")

    # Project + re-discretize into the paper's grid model.
    points_lo, _ = jl_then_discretize(points_hd.astype(float), d_low, delta, seed=8)
    points_lo, first_idx = np.unique(points_lo, axis=0, return_index=True)
    hd_aligned = points_hd[first_idx]
    n = len(points_lo)

    params = CoresetParams.practical(k=k, d=d_low, delta=delta, eps=0.25, eta=0.25)
    coreset = build_coreset_auto(points_lo, params, seed=10)
    bits_hd = point_bits(d_high, delta)
    bits_lo = point_bits(d_low, delta)
    print(f"coreset: {len(coreset)} points; per-point storage "
          f"{bits_lo} bits vs {bits_hd} bits raw ({bits_hd / bits_lo:.1f}x smaller)")

    # Balanced clustering in the projected space.
    t = n / k * 1.1
    solver = CapacitatedKClustering(k=k, capacity=coreset.total_weight / k * 1.1,
                                    r=2.0, seed=10)
    sol = solver.fit(coreset.points.astype(float), weights=coreset.weights)
    res = capacitated_assignment(points_lo, sol.centers, t, r=2.0)
    print(f"projected-space capacitated cost: {res.cost:.4g}; "
          f"loads {res.sizes.astype(int).tolist()} (t={t:.0f})")

    # Lift the clusters back: per-cluster means in the ORIGINAL 64-d space.
    lifted = np.stack([
        hd_aligned[res.labels == c].mean(axis=0)
        if (res.labels == c).any() else hd_aligned[0]
        for c in range(k)
    ])
    hd_cost = capacitated_cost(hd_aligned, lifted, t, r=2.0)
    # Reference: balanced clustering computed directly in 64-d (slow path).
    direct = CapacitatedKClustering(k=k, capacity=t, r=2.0, restarts=1,
                                    seed=10).fit(hd_aligned.astype(float))
    print(f"lifted 64-d capacitated cost {hd_cost:.4g} vs direct 64-d solve "
          f"{direct.cost:.4g} -> ratio {hd_cost / direct.cost:.3f}")


if __name__ == "__main__":
    main()
